package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTransportDialErr(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("request reached the server despite an injected dial error")
	}))
	defer srv.Close()

	in := New(5)
	in.Set(NetDialErr, 1)
	c := &http.Client{Transport: Transport{Inj: in}}
	_, err := c.Get(srv.URL) //nolint:bodyclose // no response on error
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n := in.Fired()[NetDialErr]; n != 1 {
		t.Fatalf("fired count = %d, want 1", n)
	}
}

func TestTransportRespTruncated(t *testing.T) {
	body := make([]byte, 4096)
	for i := range body {
		body[i] = byte(i)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	defer srv.Close()

	in := New(5)
	in.Set(NetRespTruncated, 1)
	c := &http.Client{Transport: Transport{Inj: in}}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncation must hit the body, not the round trip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want a mid-stream failure", len(got))
	}
	if len(got) >= len(body) {
		t.Fatalf("full body delivered (%d bytes) despite truncation", len(got))
	}
}

func TestTransportPassThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "intact")
	}))
	defer srv.Close()

	// A nil injector and an inert one both pass bodies through untouched.
	for _, in := range []*Injector{nil, New(1)} {
		c := &http.Client{Transport: Transport{Inj: in}}
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(b) != "intact" {
			t.Fatalf("passthrough read %q, %v", b, err)
		}
	}
}
