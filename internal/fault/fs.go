package fault

import (
	"io/fs"
)

// Filesystem is the disk surface the result store runs on — identical to
// rescache.FS, restated here so the packages stay decoupled (rescache must
// not depend on its own fault layer).
type Filesystem interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	MkdirAll(path string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Glob(pattern string) ([]string, error)
}

// FS wraps a real filesystem with fault injection at the disk sites:
// DiskReadErr and DiskReadCorrupt on reads, DiskWriteErr on writes and
// renames, DiskWriteTorn persisting a truncated prefix while reporting
// success (the on-disk shape a crash mid-write leaves behind). MkdirAll,
// Remove and Glob pass through: they are recovery paths, and breaking them
// would only mask the interesting faults.
type FS struct {
	Inner Filesystem
	Inj   *Injector
}

func (f FS) ReadFile(name string) ([]byte, error) {
	if err := f.Inj.Err(DiskReadErr, "read "+name); err != nil {
		return nil, err
	}
	b, err := f.Inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return f.Inj.Corrupt(DiskReadCorrupt, b), nil
}

func (f FS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err := f.Inj.Err(DiskWriteErr, "write "+name); err != nil {
		return err
	}
	if f.Inj.Hit(DiskWriteTorn) && len(data) > 1 {
		return f.Inner.WriteFile(name, data[:len(data)/2], perm)
	}
	return f.Inner.WriteFile(name, data, perm)
}

func (f FS) MkdirAll(path string, perm fs.FileMode) error {
	return f.Inner.MkdirAll(path, perm)
}

func (f FS) Rename(oldpath, newpath string) error {
	if err := f.Inj.Err(DiskWriteErr, "rename "+newpath); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f FS) Remove(name string) error { return f.Inner.Remove(name) }

func (f FS) Glob(pattern string) ([]string, error) { return f.Inner.Glob(pattern) }
