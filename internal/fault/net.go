package fault

import (
	"io"
	"net/http"
)

// Transport wraps an http.RoundTripper with fault injection at the network
// sites: NetDialErr fails the request before any bytes move (the shape of a
// refused connection or a partitioned peer), NetRespTruncated lets the
// request succeed but cuts the response body mid-stream, so readers see an
// unexpected EOF exactly as they would when the remote side dies mid-reply.
// Both are transport-level failures — callers' retry, breaker, and
// frame-verification logic must absorb them, which is the point.
type Transport struct {
	Inner http.RoundTripper // nil means http.DefaultTransport
	Inj   *Injector
}

func (t Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.Inj.Err(NetDialErr, req.Method+" "+req.URL.Host+req.URL.Path); err != nil {
		// The request never left: close the body like net/http would.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, err
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.Body != nil && t.Inj.Hit(NetRespTruncated) {
		// Deliver roughly half the declared body, then fail the stream. With
		// an unknown length, fail after a small prefix. Never a clean EOF:
		// a truncation must read as a broken connection, not a short body.
		limit := int64(64)
		if resp.ContentLength > 1 {
			limit = resp.ContentLength / 2
		}
		resp.Body = &truncatedBody{inner: resp.Body, left: limit}
	}
	return resp, nil
}

// truncatedBody reads up to left bytes from inner, then returns
// io.ErrUnexpectedEOF forever.
type truncatedBody struct {
	inner io.ReadCloser
	left  int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.inner.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		err = io.ErrUnexpectedEOF
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
