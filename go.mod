module dssmem

go 1.22
