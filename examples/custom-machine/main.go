// Custom-machine: characterize a hypothetical platform with the same
// methodology. We ask the paper's natural "what if" — an Origin-style ccNUMA
// machine with the V-Class's big single-level caches — and compare all three
// queries against the two real machines at one process.
package main

import (
	"fmt"
	"log"

	"dssmem"
)

func main() {
	const memScale = 128
	data := dssmem.GenerateData(0.002, 7)

	// Start from the Origin and graft on a V-Class-size single-level cache.
	hybrid := dssmem.Origin(32, memScale)
	hybrid.Name = "Hybrid (ccNUMA + big cache)"
	big := dssmem.VClass(16, memScale).L1 // the scaled 2MB direct-mapped cache
	big.Name = "Hybrid-D"
	hybrid.L1 = big
	hybrid.L2 = nil // single level, like the V-Class
	hybrid.L2HitCycles = 0

	specs := []dssmem.MachineSpec{
		dssmem.VClass(16, memScale),
		dssmem.Origin(32, memScale),
		hybrid,
	}

	fmt.Printf("%-28s %-5s %10s %8s %14s %12s\n",
		"machine", "query", "cycles", "CPI", "outer misses", "mem lat cyc")
	for _, q := range dssmem.Queries {
		for _, spec := range specs {
			st, err := dssmem.Run(dssmem.RunOptions{
				Spec: spec, Data: data, Query: q, Processes: 1, OSTimeScale: memScale,
			})
			if err != nil {
				log.Fatal(err)
			}
			m := dssmem.Measure(st)
			fmt.Printf("%-28s %-5s %9.4gM %8.3f %14.4g %12.1f\n",
				m.Machine, m.Query, m.ThreadCycles/1e6, m.CPI, m.OuterMisses(), m.MemLatencyCycles)
		}
	}
	fmt.Println("\nthe hybrid keeps the Origin's NUMA latencies but only the V-Class's")
	fmt.Println("single-level cache: it loses to both real machines, supporting the")
	fmt.Println("paper's conclusion that the Origin's two-level hierarchy (long L2 lines,")
	fmt.Println("bigger capacity) — not just its latencies — drives its cache behaviour.")
}
