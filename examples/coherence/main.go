// Coherence: isolate the V-Class "migratory enhancement" the paper credits
// for cheap lock hand-offs. Two processes ping-pong a read-modify-write over
// one shared line (the lock-metadata pattern); with the enhancement each
// hand-off is a single 3-hop transaction, without it the reader pays an
// intervention AND the writer pays an upgrade.
package main

import (
	"fmt"
	"log"

	"dssmem"
)

func main() {
	const memScale = 128
	data := dssmem.GenerateData(0.002, 7)

	run := func(migratory bool) dssmem.Measurement {
		spec := dssmem.VClass(16, memScale)
		spec.Protocol.Migratory = migratory
		st, err := dssmem.Run(dssmem.RunOptions{
			Spec: spec, Data: data, Query: dssmem.Q21,
			Processes: 8, OSTimeScale: memScale,
		})
		if err != nil {
			log.Fatal(err)
		}
		return dssmem.Measure(st)
	}

	on := run(true)
	off := run(false)

	fmt.Println("Q21 x8 processes on the HP V-Class — lock-heavy index query")
	fmt.Printf("%-22s %14s %14s\n", "", "migratory", "plain MESI")
	fmt.Printf("%-22s %13.4gM %13.4gM\n", "thread cycles", on.ThreadCycles/1e6, off.ThreadCycles/1e6)
	fmt.Printf("%-22s %14.1f %14.1f\n", "mem latency (cycles)", on.MemLatencyCycles, off.MemLatencyCycles)
	fmt.Printf("%-22s %14.1f %14.1f\n", "dirty 3-hop /1M instr", on.Dirty3HopPerM, off.Dirty3HopPerM)
	fmt.Printf("%-22s %14.2f %14.2f\n", "vol switches /1M", on.VolPerM, off.VolPerM)
	fmt.Println("\nthe paper: \"the query processes can benefit from it for lock accesses\" —")
	fmt.Println("with the enhancement, the owner is invalidated on the read so the")
	fmt.Println("subsequent lock-word update needs no second visit to the home directory.")
}
