// Scaling: the paper's central multi-process experiment (Figs. 5 and 7) as a
// small program — sweep 1..8 query processes of Q12 on both machines and
// watch the V-Class's thread time stay almost flat while the Origin's grows.
package main

import (
	"fmt"
	"log"

	"dssmem"
)

func main() {
	const memScale = 64
	data := dssmem.GenerateData(0.006, 7)
	fmt.Printf("Q12, %d lineitems; thread time in cycles per 1M instructions\n\n", len(data.Lineitem))
	fmt.Printf("%-18s", "machine")
	procs := []int{1, 2, 4, 6, 8}
	for _, n := range procs {
		fmt.Printf("%10dp", n)
	}
	fmt.Println()

	for _, spec := range []dssmem.MachineSpec{
		dssmem.VClass(16, memScale),
		dssmem.Origin(32, memScale),
	} {
		fmt.Printf("%-18s", spec.Name)
		var first float64
		for _, n := range procs {
			st, err := dssmem.Run(dssmem.RunOptions{
				Spec: spec, Data: data, Query: dssmem.Q12,
				Processes: n, OSTimeScale: memScale,
			})
			if err != nil {
				log.Fatal(err)
			}
			m := dssmem.Measure(st)
			if first == 0 {
				first = m.CyclesPerMInstr
			}
			fmt.Printf("%9.3fM", m.CyclesPerMInstr/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\npaper's shape: the ccNUMA Origin's communication overhead makes its")
	fmt.Println("thread time grow with the process count, while the UMA V-Class stays flat")
	fmt.Println("(and even dips from 2 to 4 processes thanks to shared-state conversion).")
}
