// Quickstart: generate a small TPC-H database, run Q6 on the simulated HP
// V-Class, and print the answer next to the hardware-counter profile —
// the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"dssmem"
)

func main() {
	// A small database: SF 0.002 is ~12k lineitem rows. memScale 128 shrinks
	// the machines' caches by the same proportion the database is shrunk
	// from the paper's 200 MB (see DESIGN.md §4).
	const memScale = 128
	data := dssmem.GenerateData(0.002, 42)
	fmt.Printf("database: %d lineitems, %d orders (%.2f MB raw)\n",
		len(data.Lineitem), len(data.Orders), float64(data.RawBytes())/1e6)

	// The answer computed directly over the rows...
	want := dssmem.ReferenceAnswer(dssmem.Q6, data)
	fmt.Printf("reference Q6 revenue: %d.%02d\n", want.Revenue/100, want.Revenue%100)

	// ...and the same query executed by the mini DBMS on the simulated
	// machine. Run() validates the two agree.
	st, err := dssmem.Run(dssmem.RunOptions{
		Spec:        dssmem.VClass(16, memScale),
		Data:        data,
		Query:       dssmem.Q6,
		Processes:   1,
		OSTimeScale: memScale,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := dssmem.Measure(st)
	fmt.Printf("\n%s, %s, %d process:\n", m.Machine, m.Query, m.Processes)
	fmt.Printf("  thread time   %.4g cycles (%.4f s)\n", m.ThreadCycles, m.WallSeconds)
	fmt.Printf("  CPI           %.3f\n", m.CPI)
	fmt.Printf("  D-cache       %.4g misses (%.0f per 1M instr)\n", m.L1Misses, m.L1MissesPerM)
	fmt.Printf("  mem latency   %.1f cycles\n", m.MemLatencyCycles)
	fmt.Printf("  miss classes  %.0f%% cold, %.0f%% capacity, %.0f%% coherence\n",
		100*m.ColdFraction, 100*m.CapacityFraction, 100*m.CoherenceFraction)
}
