package dssmem_test

import (
	"bytes"
	"strings"
	"testing"

	"dssmem"
)

func TestFacadeQuickstartPath(t *testing.T) {
	data := dssmem.GenerateData(0.002, 42)
	if len(data.Lineitem) == 0 {
		t.Fatal("no data")
	}
	st, err := dssmem.Run(dssmem.RunOptions{
		Spec:        dssmem.VClass(16, 256),
		Data:        data,
		Query:       dssmem.Q6,
		Processes:   2,
		OSTimeScale: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dssmem.Measure(st)
	if m.Machine != "HP V-Class" || m.CPI <= 1 {
		t.Fatalf("measurement: %+v", m)
	}
	ref := dssmem.ReferenceAnswer(dssmem.Q6, data)
	if ref.Revenue == 0 {
		t.Fatal("reference answer degenerate")
	}
}

func TestFacadeMachines(t *testing.T) {
	v := dssmem.VClass(16, 1)
	o := dssmem.Origin(32, 1)
	if v.Name == o.Name || v.CPUs != 16 || o.CPUs != 32 {
		t.Fatalf("specs: %s/%s", v.Name, o.Name)
	}
	if dssmem.NewMachineSpec().CPUs != 0 {
		t.Fatal("NewMachineSpec should be zero")
	}
}

func TestFacadeExperiments(t *testing.T) {
	p, err := dssmem.PresetByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	env := dssmem.NewEnv(p)
	var buf bytes.Buffer
	r, err := dssmem.RunFigure(env, 3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig3" || !strings.Contains(buf.String(), "Cycles per instruction") {
		t.Fatalf("figure: %s\n%s", r.ID, buf.String())
	}
	if len(dssmem.FigureIDs()) != 9 {
		t.Fatalf("figures: %v", dssmem.FigureIDs())
	}
	if len(dssmem.AblationNames()) < 7 {
		t.Fatalf("ablations: %v", dssmem.AblationNames())
	}
}

func TestFacadeQueryLists(t *testing.T) {
	if len(dssmem.Queries) != 3 {
		t.Fatalf("paper queries: %v", dssmem.Queries)
	}
	if len(dssmem.ExtendedQueries) != 4 {
		t.Fatalf("extended queries: %v", dssmem.ExtendedQueries)
	}
	if dssmem.Q1.String() != "Q1" {
		t.Fatal("Q1 not exposed")
	}
}

func TestFacadeExtensionQueryRuns(t *testing.T) {
	data := dssmem.GenerateData(0.002, 42)
	st, err := dssmem.Run(dssmem.RunOptions{
		Spec:        dssmem.Origin(32, 256),
		Data:        data,
		Query:       dssmem.Q1,
		Processes:   2,
		OSTimeScale: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dssmem.Measure(st).Instructions == 0 {
		t.Fatal("Q1 ran no instructions")
	}
}
