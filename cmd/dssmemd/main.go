// Command dssmemd serves the paper's simulations over HTTP: measurements,
// figures and sweeps computed on demand, deduplicated in flight, and cached
// in a persistent content-addressed store so nothing deterministic is ever
// simulated twice.
//
// Usage:
//
//	dssmemd [-addr :8077] [-preset tiny|small|medium] [-cache-dir DIR]
//	        [-workers N] [-run-timeout D] [-env-parallelism N]
//	        [-drain-timeout D]
//
// Endpoints (see internal/service):
//
//	curl localhost:8077/v1/figure/2
//	curl 'localhost:8077/v1/measure?machine=origin&query=Q21&procs=8'
//	curl 'localhost:8077/v1/sweep?machine=vclass&query=Q6'
//	curl localhost:8077/healthz
//	curl localhost:8077/metrics
//
// The first SIGINT/SIGTERM drains gracefully: new connections are refused,
// in-flight requests (and their simulations) run to completion, bounded by
// -drain-timeout. A second signal — or the drain deadline — aborts the
// remaining simulations at their next scheduling quantum and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dssmem"
	"dssmem/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	preset := flag.String("preset", "medium", "scale preset: tiny, small or medium")
	cacheDir := flag.String("cache-dir", "dssmemd-cache", "persistent result cache directory ('' = memory only)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 10*time.Minute, "per-simulation ceiling (0 = none)")
	envPar := flag.Int("env-parallelism", 0, "per-figure sweep fan-out (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget before in-flight runs are aborted")
	flag.Parse()

	p, err := dssmem.PresetByName(*preset)
	if err != nil {
		log.Fatalf("dssmemd: %v", err)
	}
	log.Printf("dssmemd: generating %s dataset (SF=%.4f)", p.Name, p.SF)
	srv, err := service.New(service.Config{
		Preset:         p,
		CacheDir:       *cacheDir,
		Workers:        *workers,
		RunTimeout:     *runTimeout,
		EnvParallelism: *envPar,
	})
	if err != nil {
		log.Fatalf("dssmemd: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("dssmemd: serving preset %s on %s (cache %s)", p.Name, *addr, cacheLabel(*cacheDir))

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("dssmemd: %v", err)
	case sig := <-sigc:
		log.Printf("dssmemd: %v — draining (up to %v; signal again to abort)", sig, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Shutdown(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("dssmemd: drain incomplete: %v — aborting in-flight runs", err)
		}
	case sig := <-sigc:
		log.Printf("dssmemd: %v — aborting in-flight runs", sig)
	}
	srv.Close()
	httpSrv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dssmemd: %v", err)
	}
	log.Printf("dssmemd: stopped")
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return fmt.Sprintf("dir %s", dir)
}
