// Command dssmemd serves the paper's simulations over HTTP: measurements,
// figures and sweeps computed on demand, deduplicated in flight, and cached
// in a persistent content-addressed store so nothing deterministic is ever
// simulated twice.
//
// Usage:
//
//	dssmemd [-addr :8077] [-preset tiny|small|medium] [-cache-dir DIR]
//	        [-workers N] [-run-timeout D] [-env-parallelism N]
//	        [-drain-timeout D] [-max-queue N] [-hard-deadline D]
//	        [-faults SPEC] [-fault-seed N]
//	        [-log-format json|text] [-debug-addr ADDR]
//	        [-role worker|coordinator] [-fleet-workers SPEC] [-peers SPEC]
//
// Overload and failure handling (DESIGN.md §10): requests beyond the worker
// pool wait in a bounded queue (-max-queue); past that they are shed with
// 429 + Retry-After. -hard-deadline arms a watchdog that abandons any
// simulation still running past the deadline, even one wedged beyond the
// reach of cooperative cancellation. -faults arms deterministic fault
// injection for chaos drills against a live daemon, e.g.
//
//	dssmemd -preset tiny -faults 'disk.read.corrupt=0.1,compute.panic=0.05'
//
// Telemetry (DESIGN.md §12): every request is assigned an X-Request-ID
// (inbound IDs are honored), logged as one structured line with per-phase
// timings, measured into per-endpoint and per-phase histograms on /metrics,
// and visible live at /debug/requests. -debug-addr opens a second listener
// with net/http/pprof plus the same /metrics and /debug/requests — keep it
// private; the main listener never exposes pprof.
//
// Fleet mode (DESIGN.md §13–14): N daemons plus one coordinator serve the
// same /v1 API as a single logical service. Workers gain a peer-fill cache
// tier with -peers; the coordinator shards requests by content digest:
//
//	dssmemd -preset tiny -addr :8078 -peers 'w1=http://localhost:8079'
//	dssmemd -preset tiny -addr :8079 -peers 'w0=http://localhost:8078'
//	dssmemd -role coordinator -preset tiny -addr :8077 \
//	        -fleet-workers 'w0=http://localhost:8078,w1=http://localhost:8079'
//
// Membership is dynamic (DESIGN.md §14): -fleet-workers is only the boot
// roster (it may be empty), and workers join and heartbeat themselves with
// -join/-name/-advertise. The coordinator ejects a worker after -eject-after
// missed heartbeats (its keyspace fails over), re-admits it through a
// half-open probe, replays hinted results to it, and — with -repair-interval
// — runs a background anti-entropy pass over the fleet's caches. With
// -job-dir, sweeps are durable jobs: a coordinator (or worker) killed
// mid-sweep resumes unfinished sweeps on restart, serving already-completed
// points from cache; poll them at /v1/jobs/{id}:
//
//	dssmemd -role coordinator -preset tiny -addr :8077 -job-dir jobs \
//	        -heartbeat 2s -eject-after 3 -repair-interval 30s
//	dssmemd -preset tiny -addr :8078 -join http://localhost:8077 \
//	        -name w0 -advertise http://localhost:8078
//
// Endpoints (see internal/service):
//
//	curl localhost:8077/v1/figure/2
//	curl 'localhost:8077/v1/measure?machine=origin&query=Q21&procs=8'
//	curl 'localhost:8077/v1/sweep?machine=vclass&query=Q6'
//	curl localhost:8077/healthz
//	curl localhost:8077/metrics
//	curl localhost:8077/debug/requests
//
// The first SIGINT/SIGTERM drains gracefully: new connections are refused,
// in-flight requests (and their simulations) run to completion, bounded by
// -drain-timeout. A second signal — or the drain deadline — aborts the
// remaining simulations at their next scheduling quantum and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dssmem"
	"dssmem/internal/fault"
	"dssmem/internal/fleet"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
	"dssmem/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	preset := flag.String("preset", "medium", "scale preset: tiny, small or medium")
	cacheDir := flag.String("cache-dir", "dssmemd-cache", "persistent result cache directory ('' = memory only)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 10*time.Minute, "per-simulation ceiling (0 = none)")
	envPar := flag.Int("env-parallelism", 0, "per-figure sweep fan-out (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget before in-flight runs are aborted")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for a worker before shedding with 429 (0 = 4x workers, <0 = unbounded)")
	hardDeadline := flag.Duration("hard-deadline", 0, "watchdog deadline after which a run is abandoned (0 = 2x run-timeout, <0 = none)")
	faultSpec := flag.String("faults", "", "arm fault injection: 'site=prob,...' (sites: "+strings.Join(siteNames(), " ")+")")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector's RNG")
	logFormat := flag.String("log-format", "json", "log output format: json or text")
	debugAddr := flag.String("debug-addr", "", "private debug listener with pprof, /metrics and /debug/requests ('' = off)")
	recentReqs := flag.Int("recent-requests", 0, "completed requests retained by /debug/requests (0 = default)")
	role := flag.String("role", "worker", "process role: worker (serves simulations) or coordinator (shards over -fleet-workers)")
	fleetWorkers := flag.String("fleet-workers", "", "coordinator: static boot roster as 'name=url,...' ('' = dynamic only, workers -join)")
	peers := flag.String("peers", "", "worker: fleet peers as 'name=url,...' consulted on a cache miss before recomputing")
	peerTries := flag.Int("peer-tries", 0, "worker: peers asked per cache miss (0 = 2)")
	stealAfter := flag.Duration("steal-after", 15*time.Second, "coordinator: straggler deadline before re-issuing a call to the next worker (<0 = off)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "membership cadence: coordinator probe interval, worker push interval with -join (<0 = coordinator ticker off)")
	ejectAfter := flag.Int("eject-after", 3, "coordinator: consecutive missed observations before a worker is ejected from the ring")
	repairEvery := flag.Duration("repair-interval", 0, "coordinator: anti-entropy repair cadence (0 = off)")
	jobDir := flag.String("job-dir", "", "durable sweep-job journal directory; unfinished sweeps resume after a restart ('' = memory only)")
	joinURL := flag.String("join", "", "worker: coordinator base URL to join and heartbeat (e.g. http://localhost:8077)")
	name := flag.String("name", "", "worker: stable fleet name sent with -join ('' = hostname)")
	advertise := flag.String("advertise", "", "worker: base URL peers reach this worker at, sent with -join ('' = derive from -addr)")
	ckpt := flag.Bool("ckpt", false, "restore warmup preludes from warm-state checkpoints (captured once, cached under the warmstate namespace, shared with fleet peers)")
	sampleQuanta := flag.Int("sample-quanta", 0, "default SMARTS sampling period for requests without sample_quanta (0/1 = exact)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dssmemd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	p, err := dssmem.PresetByName(*preset)
	if err != nil {
		fatal("bad preset", err)
	}

	// The role decides what this process is: a worker owns a dataset and
	// simulates; a coordinator owns neither — it routes, verifies and
	// aggregates, so it starts instantly and stays cheap.
	var handler http.Handler
	var closeSrv func()
	var reg *telemetry.Registry
	var dbgRequests http.Handler
	switch *role {
	case "coordinator":
		var roster []fleet.Worker
		if *fleetWorkers != "" {
			roster, err = fleet.ParseWorkers(*fleetWorkers)
			if err != nil {
				fatal("-fleet-workers", err)
			}
		}
		var fleetHTTP *http.Client
		if *faultSpec != "" {
			// Coordinator-side chaos: the injector sits in the transport of
			// every coordinator→worker call (and scrape), so net.dial.err and
			// net.resp.truncated exercise the failover/steal paths.
			probs, err := fault.ParseSpec(*faultSpec)
			if err != nil {
				fatal("-faults", err)
			}
			inj := fault.New(*faultSeed)
			inj.Configure(probs)
			fleetHTTP = &http.Client{Transport: &fault.Transport{Inj: inj}}
			logger.Warn("FAULT INJECTION ARMED", "seed", *faultSeed, "spec", inj.String())
		}
		coord, err := fleet.New(fleet.Config{
			Preset:         p,
			Workers:        roster,
			HTTP:           fleetHTTP,
			StealAfter:     *stealAfter,
			Heartbeat:      *heartbeat,
			EjectAfter:     *ejectAfter,
			RepairInterval: *repairEvery,
			JobDir:         *jobDir,
			Log:            logger,
			RecentRequests: *recentReqs,
		})
		if err != nil {
			fatal("starting coordinator", err)
		}
		handler, closeSrv, reg, dbgRequests = coord.Handler(), coord.Close, coord.Registry(), coord.DebugRequests()
		logger.Info("coordinating fleet", "workers", len(roster), "steal_after", stealAfter.String(),
			"heartbeat", heartbeat.String(), "eject_after", *ejectAfter, "jobs", cacheLabel(*jobDir))

	case "worker":
		cfg := service.Config{
			Preset:         p,
			CacheDir:       *cacheDir,
			JobDir:         *jobDir,
			Workers:        *workers,
			RunTimeout:     *runTimeout,
			EnvParallelism: *envPar,
			MaxQueue:       *maxQueue,
			HardDeadline:   *hardDeadline,
			Log:            logger,
			RecentRequests: *recentReqs,
			Checkpoints:    *ckpt,
			SampleQuanta:   *sampleQuanta,
		}
		var inj *fault.Injector
		if *faultSpec != "" {
			probs, err := fault.ParseSpec(*faultSpec)
			if err != nil {
				fatal("-faults", err)
			}
			inj = fault.New(*faultSeed)
			inj.Configure(probs)
			cfg.Faults = inj
			if *cacheDir != "" {
				// Route the cache's disk I/O through the injector too, so disk
				// sites fire; the store is otherwise identical to the default.
				store, err := rescache.OpenFS(*cacheDir, fault.FS{Inner: rescache.OSFS{}, Inj: inj})
				if err != nil {
					fatal("opening fault-injecting store", err)
				}
				cfg.Store = store
			}
			logger.Warn("FAULT INJECTION ARMED", "seed", *faultSeed, "spec", inj.String())
		}
		if *peers != "" {
			roster, err := fleet.ParseWorkers(*peers)
			if err != nil {
				fatal("-peers", err)
			}
			var peerHTTP *http.Client
			if inj != nil {
				// Peer fetches ride the same injector, so net.* sites exercise
				// the peer tier's breaker and frame verification.
				peerHTTP = &http.Client{Transport: &fault.Transport{Inj: inj}}
			}
			pf, err := fleet.NewPeerFetch(roster, peerHTTP, *peerTries)
			if err != nil {
				fatal("-peers", err)
			}
			cfg.PeerFetch = pf
			logger.Info("peer cache fill armed", "peers", len(roster))
		}

		logger.Info("generating dataset", "preset", p.Name, "sf", p.SF)
		srv, err := service.New(cfg)
		if err != nil {
			fatal("starting service", err)
		}
		handler, closeSrv, reg, dbgRequests = srv.Handler(), func() { srv.Close() }, srv.Registry(), srv.DebugRequests()

		if *joinURL != "" {
			wkName, wkURL := workerIdentity(*name, *advertise, *addr)
			every := *heartbeat
			if every <= 0 {
				every = 5 * time.Second
			}
			go heartbeatLoop(strings.TrimRight(*joinURL, "/"), wkName, wkURL, every, logger)
			logger.Info("joining fleet", "coordinator", *joinURL, "name", wkName, "advertise", wkURL, "heartbeat", every.String())
		}

	default:
		fatal("-role", fmt.Errorf("unknown role %q (worker|coordinator)", *role))
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, reg, dbgRequests, logger)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "role", *role, "preset", p.Name, "addr", *addr, "cache", cacheLabel(*cacheDir))

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal("listener failed", err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "budget", drainTimeout.String())
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Shutdown(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			logger.Warn("drain incomplete, aborting in-flight runs", "err", err)
		}
	case sig := <-sigc:
		logger.Warn("aborting in-flight runs", "signal", sig.String())
	}
	closeSrv()
	httpSrv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener error", "err", err)
	}
	logger.Info("stopped")
}

// newLogger builds the process logger writing to stderr in the chosen
// format. JSON is the default: one request per line, machine-parseable.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (json|text)", format)
}

// serveDebug runs the private debug listener: pprof (never on the public
// mux), plus the same metrics and request inspector the API serves.
func serveDebug(addr string, reg *telemetry.Registry, dbgRequests http.Handler, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/requests", dbgRequests)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	logger.Info("debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "err", err)
	}
}

// workerIdentity resolves the fleet name and advertised URL a joining worker
// announces: explicit flags win; the name falls back to the hostname and the
// URL derives from -addr (loopback when -addr only names a port — right for
// single-host fleets; multi-host fleets set -advertise).
func workerIdentity(name, advertise, addr string) (string, string) {
	if name == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			name = hn
		} else {
			name = "worker"
		}
	}
	if advertise == "" {
		if strings.HasPrefix(addr, ":") {
			advertise = "http://127.0.0.1" + addr
		} else {
			advertise = "http://" + addr
		}
	}
	return name, strings.TrimRight(advertise, "/")
}

// heartbeatLoop announces this worker to the coordinator immediately and
// then every interval: the same POST is both the initial join and the
// ongoing heartbeat (the endpoint is idempotent). Failures only log — the
// coordinator's pull probes and health scrapes are the backstop, and a
// worker keeps serving regardless of its membership state.
func heartbeatLoop(joinURL, name, selfURL string, every time.Duration, logger *slog.Logger) {
	body, _ := json.Marshal(struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}{name, selfURL})
	httpc := &http.Client{Timeout: 5 * time.Second}
	beat := func() {
		resp, err := httpc.Post(joinURL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
		if err != nil {
			logger.Warn("heartbeat failed", "coordinator", joinURL, "err", err)
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logger.Warn("heartbeat rejected", "coordinator", joinURL, "status", resp.StatusCode)
		}
	}
	beat()
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		beat()
	}
}

func siteNames() []string {
	sites := fault.Sites()
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = string(s)
	}
	return names
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return fmt.Sprintf("dir %s", dir)
}
