// Command dssmemd serves the paper's simulations over HTTP: measurements,
// figures and sweeps computed on demand, deduplicated in flight, and cached
// in a persistent content-addressed store so nothing deterministic is ever
// simulated twice.
//
// Usage:
//
//	dssmemd [-addr :8077] [-preset tiny|small|medium] [-cache-dir DIR]
//	        [-workers N] [-run-timeout D] [-env-parallelism N]
//	        [-drain-timeout D] [-max-queue N] [-hard-deadline D]
//	        [-faults SPEC] [-fault-seed N]
//
// Overload and failure handling (DESIGN.md §10): requests beyond the worker
// pool wait in a bounded queue (-max-queue); past that they are shed with
// 429 + Retry-After. -hard-deadline arms a watchdog that abandons any
// simulation still running past the deadline, even one wedged beyond the
// reach of cooperative cancellation. -faults arms deterministic fault
// injection for chaos drills against a live daemon, e.g.
//
//	dssmemd -preset tiny -faults 'disk.read.corrupt=0.1,compute.panic=0.05'
//
// Endpoints (see internal/service):
//
//	curl localhost:8077/v1/figure/2
//	curl 'localhost:8077/v1/measure?machine=origin&query=Q21&procs=8'
//	curl 'localhost:8077/v1/sweep?machine=vclass&query=Q6'
//	curl localhost:8077/healthz
//	curl localhost:8077/metrics
//
// The first SIGINT/SIGTERM drains gracefully: new connections are refused,
// in-flight requests (and their simulations) run to completion, bounded by
// -drain-timeout. A second signal — or the drain deadline — aborts the
// remaining simulations at their next scheduling quantum and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dssmem"
	"dssmem/internal/fault"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	preset := flag.String("preset", "medium", "scale preset: tiny, small or medium")
	cacheDir := flag.String("cache-dir", "dssmemd-cache", "persistent result cache directory ('' = memory only)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 10*time.Minute, "per-simulation ceiling (0 = none)")
	envPar := flag.Int("env-parallelism", 0, "per-figure sweep fan-out (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget before in-flight runs are aborted")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for a worker before shedding with 429 (0 = 4x workers, <0 = unbounded)")
	hardDeadline := flag.Duration("hard-deadline", 0, "watchdog deadline after which a run is abandoned (0 = 2x run-timeout, <0 = none)")
	faultSpec := flag.String("faults", "", "arm fault injection: 'site=prob,...' (sites: "+strings.Join(siteNames(), " ")+")")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector's RNG")
	flag.Parse()

	p, err := dssmem.PresetByName(*preset)
	if err != nil {
		log.Fatalf("dssmemd: %v", err)
	}

	cfg := service.Config{
		Preset:         p,
		CacheDir:       *cacheDir,
		Workers:        *workers,
		RunTimeout:     *runTimeout,
		EnvParallelism: *envPar,
		MaxQueue:       *maxQueue,
		HardDeadline:   *hardDeadline,
	}
	if *faultSpec != "" {
		probs, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("dssmemd: -faults: %v", err)
		}
		inj := fault.New(*faultSeed)
		inj.Configure(probs)
		cfg.Faults = inj
		if *cacheDir != "" {
			// Route the cache's disk I/O through the injector too, so disk
			// sites fire; the store is otherwise identical to the default.
			store, err := rescache.OpenFS(*cacheDir, fault.FS{Inner: rescache.OSFS{}, Inj: inj})
			if err != nil {
				log.Fatalf("dssmemd: %v", err)
			}
			cfg.Store = store
		}
		log.Printf("dssmemd: FAULT INJECTION ARMED (seed %d): %s", *faultSeed, inj)
	}

	log.Printf("dssmemd: generating %s dataset (SF=%.4f)", p.Name, p.SF)
	srv, err := service.New(cfg)
	if err != nil {
		log.Fatalf("dssmemd: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("dssmemd: serving preset %s on %s (cache %s)", p.Name, *addr, cacheLabel(*cacheDir))

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("dssmemd: %v", err)
	case sig := <-sigc:
		log.Printf("dssmemd: %v — draining (up to %v; signal again to abort)", sig, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Shutdown(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("dssmemd: drain incomplete: %v — aborting in-flight runs", err)
		}
	case sig := <-sigc:
		log.Printf("dssmemd: %v — aborting in-flight runs", sig)
	}
	srv.Close()
	httpSrv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dssmemd: %v", err)
	}
	log.Printf("dssmemd: stopped")
}

func siteNames() []string {
	sites := fault.Sites()
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = string(s)
	}
	return names
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return fmt.Sprintf("dir %s", dir)
}
