// Command qrun runs one TPC-H query on one simulated machine and prints the
// answer alongside the hardware-counter profile — the equivalent of the
// paper's single instrumented query run.
//
// Usage:
//
//	qrun [-query Q6|Q21|Q12] [-machine vclass|origin] [-procs N] [-sf 0.004] [-memscale 64]
//	     [-ckpt dir] [-sample-quanta N]
//	     [-sample N] [-sample-out f.csv|f.json] [-events trace.json] [-by-operator]
//
// -ckpt restores the warmup prelude (data generation + bulk load) from a
// warm-state checkpoint directory, capturing one on first use; results are
// byte-identical with or without it. -sample-quanta N runs SMARTS interval
// sampling: only the first quantum of every N is simulated in detail and the
// counters are estimates with printed confidence intervals (DESIGN.md §15).
//
// The telemetry flags attach the observability layer: -sample N snapshots
// each CPU's counters every N simulated cycles (sparklines on stdout,
// optionally exported with -sample-out), -events writes a Chrome
// trace-event JSON openable in Perfetto or chrome://tracing, and
// -by-operator attributes counters to query-plan operators.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dssmem"
)

func main() {
	query := flag.String("query", "Q6", "query: Q6, Q21 or Q12")
	mach := flag.String("machine", "vclass", "machine: vclass or origin")
	procs := flag.Int("procs", 1, "number of parallel query processes (1..8)")
	sf := flag.Float64("sf", 0.004, "TPC-H scale factor")
	memScale := flag.Int("memscale", 64, "cache capacity divisor (see DESIGN.md §4)")
	seed := flag.Uint64("seed", 7, "data generator seed")
	sample := flag.Uint64("sample", 0, "sample counters every N simulated cycles (0 = off)")
	sampleOut := flag.String("sample-out", "", "write sampled windows to this file (.json = JSON, else CSV)")
	events := flag.String("events", "", "write a Chrome trace-event JSON file (open in Perfetto)")
	byOperator := flag.Bool("by-operator", false, "attribute counters to query-plan operators")
	parallel := flag.Bool("parallel", false, "run the simulation in bound–weave parallel mode (deterministic; falls back to serial when telemetry flags are set)")
	parWindow := flag.Uint64("parallel-window", 0, "bound–weave window in cycles (0 = scheduling quantum)")
	ckptDir := flag.String("ckpt", "", "warm-state checkpoint directory: restore the warmup prelude from it, capturing on first use")
	sampleQuanta := flag.Int("sample-quanta", 0, "SMARTS sampling period in scheduling quanta: simulate 1 of every N in detail (0 or 1 = exact)")
	flag.Parse()

	var q dssmem.QueryID
	switch strings.ToUpper(*query) {
	case "Q6":
		q = dssmem.Q6
	case "Q21":
		q = dssmem.Q21
	case "Q12":
		q = dssmem.Q12
	default:
		fatal(fmt.Errorf("unknown query %q", *query))
	}
	var spec dssmem.MachineSpec
	switch strings.ToLower(*mach) {
	case "vclass", "hpv", "v-class":
		spec = dssmem.VClass(16, *memScale)
	case "origin", "sgi", "origin2000":
		spec = dssmem.Origin(32, *memScale)
	default:
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}

	var ob *dssmem.Observer
	if *sample > 0 || *events != "" || *byOperator {
		ob = dssmem.NewObserver(dssmem.ObsConfig{
			SampleInterval: *sample,
			Events:         *events != "",
			ByOperator:     *byOperator,
		})
	}

	opts := dssmem.RunOptions{
		Spec: spec, Query: q, Processes: *procs, OSTimeScale: *memScale,
		Obs: ob, Parallel: *parallel, ParallelWindow: *parWindow,
		SampleQuanta: *sampleQuanta,
	}
	if *ckptDir != "" {
		hit, err := dssmem.AttachWarm(context.Background(), *ckptDir, *sf, *seed, &opts)
		if err != nil {
			fatal(err)
		}
		if hit {
			fmt.Printf("checkpoint: restored warm state from %s\n", *ckptDir)
		} else {
			fmt.Printf("checkpoint: captured warm state into %s\n", *ckptDir)
		}
	} else {
		opts.Data = dssmem.GenerateData(*sf, *seed)
	}
	data := opts.Data
	ans := dssmem.ReferenceAnswer(q, data)
	st, err := dssmem.Run(opts)
	if err != nil {
		fatal(err)
	}
	m := dssmem.Measure(st)

	fmt.Printf("%s on %s, %d process(es), SF=%g (%d lineitems)\n\n",
		q, spec.Name, *procs, *sf, len(data.Lineitem))
	printAnswer(ans)
	fmt.Printf("\n-- counters (mean per process) --\n")
	fmt.Printf("thread time     %.4g cycles (%.4f s wall)\n", m.ThreadCycles, m.WallSeconds)
	fmt.Printf("instructions    %.4g\n", m.Instructions)
	fmt.Printf("CPI             %.3f\n", m.CPI)
	fmt.Printf("L1 D misses     %.4g (%.0f /1M instr, %.2f%% of refs)\n", m.L1Misses, m.L1MissesPerM, 100*m.L1MissRate)
	if m.L2Misses > 0 {
		fmt.Printf("L2 D misses     %.4g (%.0f /1M instr)\n", m.L2Misses, m.L2MissesPerM)
	}
	fmt.Printf("miss classes    cold %.1f%% capacity %.1f%% coherence %.1f%%\n",
		100*m.ColdFraction, 100*m.CapacityFraction, 100*m.CoherenceFraction)
	fmt.Printf("mem latency     %.1f cycles (%.3f us)\n", m.MemLatencyCycles, m.MemLatencyMicros)
	fmt.Printf("ctx switches    %.2f voluntary, %.2f involuntary per 1M instr\n", m.VolPerM, m.InvolPerM)

	fmt.Printf("\n-- host timing --\n")
	state := "rebuilt"
	if st.Restored {
		state = "restored from checkpoint"
	}
	fmt.Printf("warmup          %.1f ms (%s)\n", float64(st.WarmupHostNS)/1e6, state)
	fmt.Printf("measured        %.1f ms\n", float64(st.MeasuredHostNS)/1e6)
	if len(st.Sampling) > 0 {
		fmt.Printf("\n-- sampling (P=%d) --\n", *sampleQuanta)
		for i, e := range st.Sampling {
			fmt.Printf("cpu %d: %d windows, %.3g instr detailed, %.3g accesses fast-forwarded\n",
				i, e.Windows, float64(e.DetailedInstr), float64(e.FFAccesses))
			fmt.Printf("       CPI %.3f ±%.3f, L1/Minstr %.0f ±%.0f, mem latency %.1f ±%.1f cycles (CI95)\n",
				e.CPIMean, e.CPICI95, e.L1PerMMean, e.L1PerMCI95, e.MemLatMean, e.MemLatCI95)
		}
	}

	if ob != nil {
		fmt.Printf("\n-- telemetry --\n")
		if err := ob.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
		if *sampleOut != "" {
			if err := writeFile(*sampleOut, func(w io.Writer) error {
				if strings.HasSuffix(*sampleOut, ".json") {
					return ob.WriteSamplesJSON(w)
				}
				return ob.WriteSamplesCSV(w)
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("samples written to %s\n", *sampleOut)
		}
		if *events != "" {
			if err := writeFile(*events, ob.WriteTrace); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (open in Perfetto or chrome://tracing)\n", *events)
		}
	}
}

// writeFile creates path, runs emit on it and surfaces close errors.
func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printAnswer(r *dssmem.QueryResult) {
	switch r.Query {
	case dssmem.Q6:
		fmt.Printf("Q6 revenue: %d.%02d\n", r.Revenue/100, r.Revenue%100)
	case dssmem.Q12:
		fmt.Println("Q12 (shipmode, high-priority count, low-priority count):")
		for _, g := range r.Q12 {
			fmt.Printf("  mode %d: high %d, low %d\n", g.ShipMode, g.HighCount, g.LowCount)
		}
	case dssmem.Q21:
		fmt.Printf("Q21 top waiting suppliers (%d rows):\n", len(r.Q21))
		for i, g := range r.Q21 {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(r.Q21)-10)
				break
			}
			fmt.Printf("  supplier %d: %d waits\n", g.SuppKey, g.NumWait)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrun:", err)
	os.Exit(1)
}
