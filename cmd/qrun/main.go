// Command qrun runs one TPC-H query on one simulated machine and prints the
// answer alongside the hardware-counter profile — the equivalent of the
// paper's single instrumented query run.
//
// Usage:
//
//	qrun [-query Q6|Q21|Q12] [-machine vclass|origin] [-procs N] [-sf 0.004] [-memscale 64]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dssmem"
)

func main() {
	query := flag.String("query", "Q6", "query: Q6, Q21 or Q12")
	mach := flag.String("machine", "vclass", "machine: vclass or origin")
	procs := flag.Int("procs", 1, "number of parallel query processes (1..8)")
	sf := flag.Float64("sf", 0.004, "TPC-H scale factor")
	memScale := flag.Int("memscale", 64, "cache capacity divisor (see DESIGN.md §4)")
	seed := flag.Uint64("seed", 7, "data generator seed")
	flag.Parse()

	var q dssmem.QueryID
	switch strings.ToUpper(*query) {
	case "Q6":
		q = dssmem.Q6
	case "Q21":
		q = dssmem.Q21
	case "Q12":
		q = dssmem.Q12
	default:
		fatal(fmt.Errorf("unknown query %q", *query))
	}
	var spec dssmem.MachineSpec
	switch strings.ToLower(*mach) {
	case "vclass", "hpv", "v-class":
		spec = dssmem.VClass(16, *memScale)
	case "origin", "sgi", "origin2000":
		spec = dssmem.Origin(32, *memScale)
	default:
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}

	data := dssmem.GenerateData(*sf, *seed)
	ans := dssmem.ReferenceAnswer(q, data)
	st, err := dssmem.Run(dssmem.RunOptions{
		Spec: spec, Data: data, Query: q, Processes: *procs, OSTimeScale: *memScale,
	})
	if err != nil {
		fatal(err)
	}
	m := dssmem.Measure(st)

	fmt.Printf("%s on %s, %d process(es), SF=%g (%d lineitems)\n\n",
		q, spec.Name, *procs, *sf, len(data.Lineitem))
	printAnswer(ans)
	fmt.Printf("\n-- counters (mean per process) --\n")
	fmt.Printf("thread time     %.4g cycles (%.4f s wall)\n", m.ThreadCycles, m.WallSeconds)
	fmt.Printf("instructions    %.4g\n", m.Instructions)
	fmt.Printf("CPI             %.3f\n", m.CPI)
	fmt.Printf("L1 D misses     %.4g (%.0f /1M instr, %.2f%% of refs)\n", m.L1Misses, m.L1MissesPerM, 100*m.L1MissRate)
	if m.L2Misses > 0 {
		fmt.Printf("L2 D misses     %.4g (%.0f /1M instr)\n", m.L2Misses, m.L2MissesPerM)
	}
	fmt.Printf("miss classes    cold %.1f%% capacity %.1f%% coherence %.1f%%\n",
		100*m.ColdFraction, 100*m.CapacityFraction, 100*m.CoherenceFraction)
	fmt.Printf("mem latency     %.1f cycles (%.3f us)\n", m.MemLatencyCycles, m.MemLatencyMicros)
	fmt.Printf("ctx switches    %.2f voluntary, %.2f involuntary per 1M instr\n", m.VolPerM, m.InvolPerM)
}

func printAnswer(r *dssmem.QueryResult) {
	switch r.Query {
	case dssmem.Q6:
		fmt.Printf("Q6 revenue: %d.%02d\n", r.Revenue/100, r.Revenue%100)
	case dssmem.Q12:
		fmt.Println("Q12 (shipmode, high-priority count, low-priority count):")
		for _, g := range r.Q12 {
			fmt.Printf("  mode %d: high %d, low %d\n", g.ShipMode, g.HighCount, g.LowCount)
		}
	case dssmem.Q21:
		fmt.Printf("Q21 top waiting suppliers (%d rows):\n", len(r.Q21))
		for i, g := range r.Q21 {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(r.Q21)-10)
				break
			}
			fmt.Printf("  supplier %d: %d waits\n", g.SuppKey, g.NumWait)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrun:", err)
	os.Exit(1)
}
