// Command machinesim runs the microbenchmarks of the authors' earlier study
// (Iyer et al., ICS'99) against the simulated machines: dependent-load
// latency across working-set sizes, streaming bandwidth, and lock ping-pong
// hand-off cost. It is the calibration face of the machine models.
//
// Usage:
//
//	machinesim [-memscale 1] [-iters 200000]
package main

import (
	"flag"
	"fmt"

	"dssmem/internal/machine"
	"dssmem/internal/microbench"
)

func main() {
	memScale := flag.Int("memscale", 1, "cache capacity divisor")
	iters := flag.Int("iters", 200_000, "loads per latency point")
	flag.Parse()

	specs := []machine.Spec{
		machine.VClassSpec(16, *memScale),
		machine.OriginSpec(32, *memScale),
	}

	fmt.Println("== dependent-load latency (cold start, then steady state) ==")
	fmt.Printf("%-18s %12s %14s %14s\n", "machine", "working set", "cycles/load", "ns/load")
	for _, spec := range specs {
		for _, ws := range []int{4 << 10, 64 << 10, 1 << 20, 16 << 20} {
			r := microbench.Latency(spec, ws, *iters)
			fmt.Printf("%-18s %12d %14.2f %14.2f\n", r.Machine, r.WorkingSet, r.AvgCycles, r.AvgNanoseconds)
		}
	}

	fmt.Println("\n== streaming read bandwidth ==")
	fmt.Printf("%-18s %16s %14s\n", "machine", "bytes/cycle", "MB/s")
	for _, spec := range specs {
		r := microbench.Bandwidth(spec, 8<<20)
		fmt.Printf("%-18s %16.3f %14.0f\n", r.Machine, r.BytesPerCycle, r.MBPerSecond)
	}

	fmt.Println("\n== shared-line ping-pong (lock metadata pattern) ==")
	fmt.Printf("%-18s %6s %18s\n", "machine", "procs", "cycles/access")
	for _, spec := range specs {
		for _, n := range []int{2, 4, 8} {
			r := microbench.PingPong(spec, n, 3000)
			fmt.Printf("%-18s %6d %18.1f\n", r.Machine, r.Processes, r.CyclesPerAccess)
		}
	}

	fmt.Println("\n== DBMS scan kernel (tiny Q6 through the full stack) ==")
	fmt.Printf("%-18s %8s %16s\n", "machine", "CPI", "L1 misses/row")
	for _, spec := range specs {
		r := microbench.Scan(spec, 0.001)
		fmt.Printf("%-18s %8.3f %16.2f\n", r.Machine, r.CPI, r.MissesPerRow)
	}
}
