// Command dssbench regenerates the paper's evaluation figures and ablations.
//
// Usage:
//
//	dssbench [-preset tiny|small|medium] [-fig N|all] [-ablation name|all|none]
//	dssbench [-sample N] [-events trace.json] [-by-operator] [-query Q] [-machine M] [-procs N]
//
// Examples:
//
//	dssbench -fig all                 # every figure at the default preset
//	dssbench -preset small -fig 9     # just the memory-latency figure
//	dssbench -ablation migratory      # one ablation
//	dssbench -sample 2000000 -query Q6 -machine origin -procs 4
//	                                  # time-resolved telemetry of one run
//	dssbench -events trace.json -by-operator -query Q21
//	                                  # Perfetto trace + operator attribution
//
// Any of -sample / -events / -by-operator switches dssbench into observed-run
// mode: instead of regenerating figures it executes one configuration
// (-query/-machine/-procs) at the preset's scale with the observability layer
// attached, then prints sparkline time series and the operator table and
// writes the requested export files. -fig defaults to 'none' in this mode
// unless given explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dssmem"
	"dssmem/internal/rescache"
	"dssmem/internal/telemetry"
)

func main() {
	preset := flag.String("preset", "medium", "scale preset: tiny, small or medium")
	fig := flag.String("fig", "all", "figure number 2..10, or 'all', or 'none'")
	ablation := flag.String("ablation", "none", "ablation name, 'all', or 'none'")
	format := flag.String("format", "table", "output format: table, csv or json")
	jsonOut := flag.String("json", "", "also write a machine-readable benchmark document (figures, ablations, wall/sim timing) to this file ('-' = stdout)")
	chart := flag.Bool("chart", false, "append terminal sparklines for sweep figures")
	parallel := flag.Bool("parallel", false, "run simulations in bound–weave parallel mode (deterministic; see DESIGN.md §11). Observed runs stay serial")
	parWindow := flag.Uint64("parallel-window", 0, "bound–weave window in cycles (0 = scheduling quantum)")
	list := flag.Bool("list", false, "list available figures and ablations")
	sample := flag.Uint64("sample", 0, "observed run: sample counters every N simulated cycles")
	sampleOut := flag.String("sample-out", "", "observed run: write sampled windows to this file (.json = JSON, else CSV)")
	events := flag.String("events", "", "observed run: write a Chrome trace-event JSON file (open in Perfetto)")
	byOperator := flag.Bool("by-operator", false, "observed run: attribute counters to query-plan operators")
	query := flag.String("query", "Q6", "observed run: query (Q6, Q21, Q12)")
	mach := flag.String("machine", "vclass", "observed run: machine (vclass or origin)")
	procs := flag.Int("procs", 4, "observed run: number of parallel query processes")
	ckpt := flag.Bool("ckpt", false, "restore the warmup prelude from warm-state checkpoints (captured once per dataset identity)")
	ckptDir := flag.String("ckpt-dir", "", "persist results and warm-state checkpoints in this directory (implies -ckpt)")
	sampleQuanta := flag.Int("sample-quanta", 0, "SMARTS sampling period in scheduling quanta: simulate 1 of every N in detail (0 or 1 = exact; estimates, cached under their own digests)")
	flag.Parse()

	observed := *sample > 0 || *events != "" || *byOperator
	if observed {
		figSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "fig" {
				figSet = true
			}
		})
		if !figSet {
			*fig = "none"
		}
	}

	if *list {
		fmt.Println("figures: ", dssmem.FigureIDs())
		fmt.Println("ablations:", dssmem.AblationNames())
		return
	}

	p, err := dssmem.PresetByName(*preset)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	env := dssmem.NewEnv(p)
	env.Parallel = *parallel
	env.ParallelWindow = *parWindow
	env.Checkpoints = *ckpt || *ckptDir != ""
	env.SampleQuanta = *sampleQuanta
	tally := &dssmem.RunTally{}
	env.Tally = tally
	if *ckptDir != "" {
		store, err := rescache.Open(*ckptDir)
		if err != nil {
			fatal(err)
		}
		env.Results = store
	}
	if *format == "table" {
		fmt.Printf("preset %s: SF=%.4f memScale=%d — %d lineitems, %d orders (%.1f MB raw)\n\n",
			p.Name, p.SF, p.MemScale, len(env.Data.Lineitem), len(env.Data.Orders),
			float64(env.Data.RawBytes())/1e6)
	}

	if observed {
		if err := observedRun(env.Data, p, *query, *mach, *procs,
			*sample, *sampleOut, *events, *byOperator); err != nil {
			fatal(err)
		}
	}

	var figs []int
	switch *fig {
	case "all":
		figs = dssmem.FigureIDs()
	case "none":
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fatal(fmt.Errorf("bad -fig %q: %w", *fig, err))
		}
		figs = []int{n}
	}
	doc := benchDoc{
		Preset:   p.Name,
		SF:       p.SF,
		MemScale: p.MemScale,
		Go:       runtime.Version(),
	}
	emit := func(r *dssmem.FigureResult) {
		var err error
		switch *format {
		case "csv":
			err = r.WriteCSV(os.Stdout)
		case "json":
			err = r.WriteJSON(os.Stdout)
		default:
			_, err = r.WriteTo(os.Stdout)
			if err == nil && *chart {
				err = r.WriteChart(os.Stdout)
			}
		}
		if err != nil {
			fatal(err)
		}
	}
	timed := func(run func() (*dssmem.FigureResult, error)) *dssmem.FigureResult {
		begin := time.Now()
		runs0, restored0, warm0, meas0 := tally.Snapshot()
		r, err := run()
		if err != nil {
			fatal(err)
		}
		runs1, restored1, warm1, meas1 := tally.Snapshot()
		doc.add(r, time.Since(begin), runSplit{
			Runs:       runs1 - runs0,
			Restored:   restored1 - restored0,
			WarmupMS:   float64((warm1-warm0)/1000 /*ns→µs*/) / 1e3,
			MeasuredMS: float64((meas1-meas0)/1000) / 1e3,
		})
		return r
	}
	for _, id := range figs {
		id := id
		emit(timed(func() (*dssmem.FigureResult, error) { return dssmem.RunFigure(env, id, nil) }))
	}

	var abls []string
	switch *ablation {
	case "all":
		abls = dssmem.AblationNames()
	case "none", "":
	default:
		abls = []string{*ablation}
	}
	for _, name := range abls {
		name := name
		emit(timed(func() (*dssmem.FigureResult, error) { return dssmem.RunAblation(env, name, nil) }))
	}
	if *jsonOut != "" {
		doc.TotalWallMS = float64(time.Since(start).Microseconds()) / 1e3
		if err := writeBenchDoc(*jsonOut, &doc); err != nil {
			fatal(err)
		}
		if *format == "table" && *jsonOut != "-" {
			fmt.Printf("benchmark document written to %s\n", *jsonOut)
		}
	}
	if *format == "table" {
		fmt.Printf("total: %s\n", time.Since(start).Truncate(time.Millisecond))
	}
}

// benchDoc is the machine-readable trajectory record emitted by -json: one
// entry per figure/ablation with host wall time and the slowest cell's
// simulated wall time, so CI can populate BENCH_*.json files from a run.
type benchDoc struct {
	Preset      string       `json:"preset"`
	SF          float64      `json:"sf"`
	MemScale    int          `json:"mem_scale"`
	Go          string       `json:"go"`
	Figures     []benchEntry `json:"figures,omitempty"`
	Ablations   []benchEntry `json:"ablations,omitempty"`
	TotalWallMS float64      `json:"total_wall_ms"`
}

type benchEntry struct {
	ID            string  `json:"id"`
	WallMS        float64 `json:"wall_ms"`
	SimSecondsMax float64 `json:"sim_seconds_max,omitempty"`
	// The per-run host-time split: simulations executed for this entry (cache
	// hits excluded — nothing ran), how many restored their warmup prelude
	// from a warm-state checkpoint, and where the host wall-clock went.
	Runs       int                  `json:"runs"`
	Restored   int                  `json:"restored"`
	WarmupMS   float64              `json:"warmup_ms"`
	MeasuredMS float64              `json:"measured_ms"`
	Result     *dssmem.FigureResult `json:"result"`
}

// runSplit is the tally delta attributed to one figure/ablation entry.
type runSplit struct {
	Runs       int
	Restored   int
	WarmupMS   float64
	MeasuredMS float64
}

// add records a completed figure or ablation with its timing.
func (d *benchDoc) add(r *dssmem.FigureResult, wall time.Duration, split runSplit) {
	e := benchEntry{
		ID:         r.ID,
		WallMS:     float64(wall.Microseconds()) / 1e3,
		Runs:       split.Runs,
		Restored:   split.Restored,
		WarmupMS:   split.WarmupMS,
		MeasuredMS: split.MeasuredMS,
		Result:     r,
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.WallSeconds > e.SimSecondsMax {
				e.SimSecondsMax = p.WallSeconds
			}
		}
	}
	if _, err := strconv.Atoi(strings.TrimPrefix(r.ID, "fig")); err == nil && strings.HasPrefix(r.ID, "fig") {
		d.Figures = append(d.Figures, e)
	} else {
		d.Ablations = append(d.Ablations, e)
	}
}

func writeBenchDoc(path string, doc *benchDoc) error {
	write := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	if path == "-" {
		return write(os.Stdout)
	}
	return emitFile(path, write)
}

// observedRun executes one configuration with the observability layer
// attached and emits its telemetry.
func observedRun(data *dssmem.Data, p dssmem.Preset, query, mach string, procs int,
	sample uint64, sampleOut, events string, byOperator bool) error {
	var q dssmem.QueryID
	switch strings.ToUpper(query) {
	case "Q6":
		q = dssmem.Q6
	case "Q21":
		q = dssmem.Q21
	case "Q12":
		q = dssmem.Q12
	case "Q1":
		q = dssmem.Q1
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	var spec dssmem.MachineSpec
	switch strings.ToLower(mach) {
	case "vclass", "hpv", "v-class":
		spec = dssmem.VClass(16, p.MemScale)
	case "origin", "sgi", "origin2000":
		spec = dssmem.Origin(32, p.MemScale)
	default:
		return fmt.Errorf("unknown machine %q", mach)
	}

	ob := dssmem.NewObserver(dssmem.ObsConfig{
		SampleInterval: sample,
		Events:         events != "",
		ByOperator:     byOperator,
	})
	// Observed CLI runs get a request ID too, so a trace produced here is
	// addressable the same way as one produced behind the daemon.
	reqID := telemetry.NewID()
	ob.SetRequestID(reqID)
	st, err := dssmem.Run(dssmem.RunOptions{
		Spec: spec, Data: data, Query: q, Processes: procs,
		OSTimeScale: p.MemScale, Obs: ob,
	})
	if err != nil {
		return err
	}
	m := dssmem.Measure(st)
	fmt.Printf("observed run: %s on %s, %d process(es) — CPI %.3f, mem latency %.1f cycles\n\n",
		q, spec.Name, procs, m.CPI, m.MemLatencyCycles)
	if err := ob.WriteSummary(os.Stdout); err != nil {
		return err
	}
	if sampleOut != "" {
		if err := emitFile(sampleOut, func(w io.Writer) error {
			if strings.HasSuffix(sampleOut, ".json") {
				return ob.WriteSamplesJSON(w)
			}
			return ob.WriteSamplesCSV(w)
		}); err != nil {
			return err
		}
		fmt.Printf("samples written to %s\n", sampleOut)
	}
	if events != "" {
		if err := emitFile(events, ob.WriteTrace); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in Perfetto or chrome://tracing; request id %s)\n", events, reqID)
	}
	return nil
}

// emitFile creates path, runs emit on it and surfaces close errors.
func emitFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dssbench:", err)
	os.Exit(1)
}
