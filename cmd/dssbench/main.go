// Command dssbench regenerates the paper's evaluation figures and ablations.
//
// Usage:
//
//	dssbench [-preset tiny|small|medium] [-fig N|all] [-ablation name|all|none]
//
// Examples:
//
//	dssbench -fig all                 # every figure at the default preset
//	dssbench -preset small -fig 9     # just the memory-latency figure
//	dssbench -ablation migratory      # one ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"dssmem"
)

func main() {
	preset := flag.String("preset", "medium", "scale preset: tiny, small or medium")
	fig := flag.String("fig", "all", "figure number 2..10, or 'all', or 'none'")
	ablation := flag.String("ablation", "none", "ablation name, 'all', or 'none'")
	format := flag.String("format", "table", "output format: table, csv or json")
	chart := flag.Bool("chart", false, "append terminal sparklines for sweep figures")
	list := flag.Bool("list", false, "list available figures and ablations")
	flag.Parse()

	if *list {
		fmt.Println("figures: ", dssmem.FigureIDs())
		fmt.Println("ablations:", dssmem.AblationNames())
		return
	}

	p, err := dssmem.PresetByName(*preset)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	env := dssmem.NewEnv(p)
	if *format == "table" {
		fmt.Printf("preset %s: SF=%.4f memScale=%d — %d lineitems, %d orders (%.1f MB raw)\n\n",
			p.Name, p.SF, p.MemScale, len(env.Data.Lineitem), len(env.Data.Orders),
			float64(env.Data.RawBytes())/1e6)
	}

	var figs []int
	switch *fig {
	case "all":
		figs = dssmem.FigureIDs()
	case "none":
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fatal(fmt.Errorf("bad -fig %q: %w", *fig, err))
		}
		figs = []int{n}
	}
	emit := func(r *dssmem.FigureResult) {
		var err error
		switch *format {
		case "csv":
			err = r.WriteCSV(os.Stdout)
		case "json":
			err = r.WriteJSON(os.Stdout)
		default:
			_, err = r.WriteTo(os.Stdout)
			if err == nil && *chart {
				err = r.WriteChart(os.Stdout)
			}
		}
		if err != nil {
			fatal(err)
		}
	}
	for _, id := range figs {
		r, err := dssmem.RunFigure(env, id, nil)
		if err != nil {
			fatal(err)
		}
		emit(r)
	}

	var abls []string
	switch *ablation {
	case "all":
		abls = dssmem.AblationNames()
	case "none", "":
	default:
		abls = []string{*ablation}
	}
	for _, name := range abls {
		r, err := dssmem.RunAblation(env, name, nil)
		if err != nil {
			fatal(err)
		}
		emit(r)
	}
	if *format == "table" {
		fmt.Printf("total: %s\n", time.Since(start).Truncate(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dssbench:", err)
	os.Exit(1)
}
