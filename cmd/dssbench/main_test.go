package main

import (
	"encoding/json"
	"testing"
	"time"

	"dssmem"
)

// TestBenchEntryJSONShape pins the -json document's per-entry shape: external
// consumers (CI trend scripts, BENCH_*.json diffs) key on these exact names,
// so a rename or reorder must be deliberate.
func TestBenchEntryJSONShape(t *testing.T) {
	e := benchEntry{
		ID:            "fig5",
		WallMS:        1.5,
		SimSecondsMax: 2,
		Runs:          15,
		Restored:      14,
		WarmupMS:      3.25,
		MeasuredMS:    40.5,
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":"fig5","wall_ms":1.5,"sim_seconds_max":2,"runs":15,"restored":14,"warmup_ms":3.25,"measured_ms":40.5,"result":null}`
	if string(b) != want {
		t.Fatalf("benchEntry JSON shape changed:\nwant %s\ngot  %s", want, b)
	}
}

// TestBenchDocSplitAccounting checks that the tally deltas land on the entry:
// a figure run at tiny scale reports its runs and a non-zero time split.
func TestBenchDocSplitAccounting(t *testing.T) {
	var doc benchDoc
	r := &dssmem.FigureResult{ID: "fig5"}
	doc.add(r, 10*time.Millisecond, runSplit{Runs: 3, Restored: 2, WarmupMS: 1.5, MeasuredMS: 8})
	if len(doc.Figures) != 1 {
		t.Fatalf("fig5 not filed under figures: %+v", doc)
	}
	got := doc.Figures[0]
	if got.Runs != 3 || got.Restored != 2 || got.WarmupMS != 1.5 || got.MeasuredMS != 8 {
		t.Fatalf("split not recorded: %+v", got)
	}
}
