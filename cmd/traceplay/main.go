// Command traceplay records, inspects and replays memory-reference traces —
// the trace-driven companion to the execution-driven dssbench, after the
// authors' TPC-C trace study.
//
// Usage:
//
//	traceplay -record q6.trc -query Q6 -sf 0.002      # capture a query
//	traceplay -analyze q6.trc                          # trace composition
//	traceplay -replay q6.trc -machine origin           # drive a machine model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dssmem"
	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/trace"
)

func main() {
	record := flag.String("record", "", "capture a query trace into this file")
	analyze := flag.String("analyze", "", "print the composition of this trace")
	replay := flag.String("replay", "", "replay this trace onto a machine model")
	query := flag.String("query", "Q6", "query to capture (Q6, Q21, Q12)")
	sf := flag.Float64("sf", 0.002, "scale factor for -record")
	seed := flag.Uint64("seed", 7, "data seed for -record")
	mach := flag.String("machine", "vclass", "machine for -replay: vclass or origin")
	memScale := flag.Int("memscale", 128, "cache divisor for -replay")
	flag.Parse()

	switch {
	case *record != "":
		q, err := parseQuery(*query)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		data := dssmem.GenerateData(*sf, *seed)
		n, err := trace.CaptureQuery(f, data, q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d events of %s at SF %g into %s\n", n, q, *sf, *record)

	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		st, err := trace.Analyze(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loads          %d\nstores         %d\nwork ops       %d\n", st.Loads, st.Stores, st.WorkOps)
		fmt.Printf("instructions   %d\ndistinct 64B lines %d\n", st.Instructions, st.DistinctLines)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var spec machine.Spec
		switch strings.ToLower(*mach) {
		case "vclass":
			spec = machine.VClassSpec(16, *memScale)
		case "origin":
			spec = machine.OriginSpec(32, *memScale)
		default:
			fatal(fmt.Errorf("unknown machine %q", *mach))
		}
		m := machine.New(spec)
		mem := &trace.MachineMem{M: m, CPU: 0}
		n, err := trace.Replay(f, mem)
		if err != nil {
			fatal(err)
		}
		ct := m.Counters(0)
		fmt.Printf("replayed %d events on %s\n", n, spec.Name)
		fmt.Printf("cycles        %d\ninstructions  %d\nCPI           %.3f\n", ct.Cycles, ct.Instructions, ct.CPI())
		fmt.Printf("L1 D misses   %d\n", ct.L1DMisses)
		if ct.L2DMisses > 0 {
			fmt.Printf("L2 D misses   %d\n", ct.L2DMisses)
		}
		fmt.Printf("avg mem lat   %.1f cycles\n", ct.AvgMemLatency())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseQuery(s string) (tpch.QueryID, error) {
	switch strings.ToUpper(s) {
	case "Q6":
		return tpch.Q6, nil
	case "Q21":
		return tpch.Q21, nil
	case "Q12":
		return tpch.Q12, nil
	}
	return 0, fmt.Errorf("unknown query %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceplay:", err)
	os.Exit(1)
}
