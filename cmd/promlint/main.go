// Command promlint structurally validates a Prometheus text exposition —
// the CI gate that keeps dssmemd's /metrics consumable by real scrapers.
//
// Usage:
//
//	promlint [-require name,name,...] [file]
//
// Reads the exposition from file (or stdin when absent or "-"), runs the
// parser-based lint from internal/telemetry (HELP/TYPE pairing, name and
// label validity, escaping, duplicate series, histogram completeness), and
// optionally requires the named families or series to be present. Exits 1
// with one line per problem on any violation.
//
//	curl -s localhost:8077/metrics | promlint -require dssmem_runs_total,dssmem_phase_seconds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dssmem/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated families or series that must be present")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if arg := flag.Arg(0); arg != "" && arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, arg
	}

	rep, err := telemetry.Lint(in)
	if err != nil {
		fatal(err)
	}
	problems := rep.Problems
	if *require != "" {
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if !rep.HasFamily(want) && !rep.HasSeries(want) {
				problems = append(problems, fmt.Sprintf("required metric %s not present", want))
			}
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "promlint: %s: %s\n", name, p)
		}
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: ok (%d families)\n", name, len(rep.Families))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promlint:", err)
	os.Exit(1)
}
