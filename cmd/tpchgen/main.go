// Command tpchgen generates the TPC-H subset used by the study and dumps a
// table as CSV, like a miniature dbgen.
//
// Usage:
//
//	tpchgen [-sf 0.01] [-seed 7] [-table lineitem|orders|supplier|nation] [-limit N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dssmem"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 1.5M orders)")
	seed := flag.Uint64("seed", 7, "generator seed")
	table := flag.String("table", "lineitem", "table to dump: lineitem, orders, supplier, nation, or summary")
	limit := flag.Int("limit", 0, "max rows to dump (0 = all)")
	flag.Parse()

	d := dssmem.GenerateData(*sf, *seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	capped := func(n int) int {
		if *limit > 0 && *limit < n {
			return *limit
		}
		return n
	}

	switch *table {
	case "summary":
		fmt.Fprintf(w, "sf=%g seed=%d\n", *sf, *seed)
		fmt.Fprintf(w, "lineitem: %d rows\norders:   %d rows\nsupplier: %d rows\nnation:   %d rows\n",
			len(d.Lineitem), len(d.Orders), len(d.Suppliers), len(d.Nations))
		fmt.Fprintf(w, "raw bytes: %d (%.2f MB)\n", d.RawBytes(), float64(d.RawBytes())/1e6)
	case "lineitem":
		fmt.Fprintln(w, "l_orderkey,l_suppkey,l_quantity,l_extendedprice,l_discount,l_shipdate,l_commitdate,l_receiptdate,l_shipmode,l_linenumber")
		for _, l := range d.Lineitem[:capped(len(d.Lineitem))] {
			fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				l.OrderKey, l.SuppKey, l.Quantity, l.ExtendedPrice, l.Discount,
				l.ShipDate, l.CommitDate, l.ReceiptDate, l.ShipMode, l.LineNumber)
		}
	case "orders":
		fmt.Fprintln(w, "o_orderkey,o_orderstatus,o_orderdate,o_orderpriority")
		for _, o := range d.Orders[:capped(len(d.Orders))] {
			fmt.Fprintf(w, "%d,%d,%d,%d\n", o.OrderKey, o.OrderStatus, o.OrderDate, o.Priority)
		}
	case "supplier":
		fmt.Fprintln(w, "s_suppkey,s_nationkey")
		for _, s := range d.Suppliers[:capped(len(d.Suppliers))] {
			fmt.Fprintf(w, "%d,%d\n", s.SuppKey, s.NationKey)
		}
	case "nation":
		fmt.Fprintln(w, "n_nationkey,n_regionkey")
		for i, r := range d.Nations[:capped(len(d.Nations))] {
			fmt.Fprintf(w, "%d,%d\n", i, r)
		}
	default:
		fmt.Fprintf(os.Stderr, "tpchgen: unknown table %q\n", *table)
		os.Exit(1)
	}
}
