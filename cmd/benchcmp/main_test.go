package main

import "testing"

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkFig5-8   3  3247131416 ns/op  1333661 sgi-cyc/Minstr@8p  373589637 B/op  5546857 allocs/op")
	if !ok || name != "BenchmarkFig5" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if s.NsOp != 3247131416 || s.AllocsOp != 5546857 || s.BytesOp != 373589637 {
		t.Fatalf("sample = %+v", s)
	}
	if _, _, ok := parseLine("ok  \tdssmem\t32.8s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, _, ok := parseLine("BenchmarkX broken line"); ok {
		t.Fatal("malformed line accepted")
	}
	// Plain name without GOMAXPROCS suffix, time only.
	name, s, ok = parseLine("BenchmarkCacheLookup \t 100 \t 52.0 ns/op")
	if !ok || name != "BenchmarkCacheLookup" || s.NsOp != 52 || s.haveAl {
		t.Fatalf("ok=%v name=%q sample=%+v", ok, name, s)
	}
}

func TestRegressionDetection(t *testing.T) {
	old := sample{NsOp: 100, AllocsOp: 10, haveNs: true, haveAl: true}
	fresh := sample{NsOp: 125, AllocsOp: 10, haveNs: true, haveAl: true}
	c := comparison{Old: &old, New: &fresh}
	c.regressNs = fresh.NsOp > old.NsOp*1.10
	if !c.regressNs {
		t.Fatal("25% slowdown not flagged at 10% tolerance")
	}
	within := sample{NsOp: 105, AllocsOp: 10, haveNs: true, haveAl: true}
	if within.NsOp > old.NsOp*1.10 {
		t.Fatal("5% slowdown flagged at 10% tolerance")
	}
}
