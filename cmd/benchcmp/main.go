// Command benchcmp compares two `go test -bench` output files and fails when
// the new run regresses past a tolerance — a dependency-free stand-in for
// benchstat, sized for CI gating rather than statistics.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... > new.txt
//	benchcmp [-tol 0.10] [-json out.json] [-note text] old.txt new.txt
//
// Multiple samples of the same benchmark (e.g. -count 3) are reduced to
// their minimum ns/op (the least-noise estimate) and maximum allocs/op (the
// conservative one). Benchmarks present in only one file are reported but
// never fail the comparison, so the baseline does not need regenerating when
// a benchmark is added. Exit status 1 means at least one benchmark regressed
// in ns/op or allocs/op by more than the tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
	haveNs   bool
	haveAl   bool
}

type comparison struct {
	Name     string  `json:"name"`
	Old      *sample `json:"old,omitempty"`
	New      *sample `json:"new,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`     // old ns / new ns
	AllocCut float64 `json:"alloc_ratio,omitempty"` // new allocs / old allocs
	Regressed,
	regressNs, regressAllocs bool
}

func main() {
	tol := flag.Float64("tol", 0.10, "relative regression tolerance for ns/op and allocs/op")
	jsonOut := flag.String("json", "", "write the comparison as JSON to this file ('-' = stdout)")
	note := flag.String("note", "", "free-form note recorded in the JSON document")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol F] [-json out] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	names := make(map[string]bool)
	for n := range old {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []comparison
	failed := false
	for _, n := range sorted {
		c := comparison{Name: n, Old: old[n], New: cur[n]}
		if c.Old != nil && c.New != nil {
			if c.Old.haveNs && c.New.haveNs && c.New.NsOp > 0 {
				c.Speedup = c.Old.NsOp / c.New.NsOp
				c.regressNs = c.New.NsOp > c.Old.NsOp*(1+*tol)
			}
			if c.Old.haveAl && c.New.haveAl && c.Old.AllocsOp > 0 {
				c.AllocCut = c.New.AllocsOp / c.Old.AllocsOp
				c.regressAllocs = c.New.AllocsOp > c.Old.AllocsOp*(1+*tol)
			}
			c.Regressed = c.regressNs || c.regressAllocs
			failed = failed || c.Regressed
		}
		rows = append(rows, c)
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-36s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "allocs")
	for _, c := range rows {
		switch {
		case c.Old == nil:
			fmt.Fprintf(w, "%-36s %14s %14.0f %9s %9s  (new)\n", c.Name, "-", c.New.NsOp, "-", "-")
		case c.New == nil:
			fmt.Fprintf(w, "%-36s %14.0f %14s %9s %9s  (removed)\n", c.Name, c.Old.NsOp, "-", "-", "-")
		default:
			mark := ""
			if c.Regressed {
				mark = "  REGRESSED"
				if c.regressAllocs {
					mark += " (allocs)"
				}
			}
			alloc := "-"
			if c.AllocCut > 0 {
				alloc = fmt.Sprintf("%.3fx", c.AllocCut)
			}
			fmt.Fprintf(w, "%-36s %14.0f %14.0f %8.2fx %9s%s\n", c.Name, c.Old.NsOp, c.New.NsOp, c.Speedup, alloc, mark)
		}
	}
	w.Flush()

	if *jsonOut != "" {
		doc := struct {
			Tolerance  float64      `json:"tolerance"`
			Note       string       `json:"note,omitempty"`
			Regressed  bool         `json:"regressed"`
			Benchmarks []comparison `json:"benchmarks"`
		}{*tol, *note, failed, rows}
		out, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		out = append(out, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			fatal(err)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: regression beyond %.0f%% tolerance\n", *tol*100)
		os.Exit(1)
	}
}

// MarshalJSON keeps the exported regression verdict while hiding the
// per-metric flags.
func (c comparison) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name      string  `json:"name"`
		Old       *sample `json:"old,omitempty"`
		New       *sample `json:"new,omitempty"`
		Speedup   float64 `json:"speedup,omitempty"`
		AllocCut  float64 `json:"alloc_ratio,omitempty"`
		Regressed bool    `json:"regressed"`
	}
	return json.Marshal(alias{c.Name, c.Old, c.New, c.Speedup, c.AllocCut, c.Regressed})
}

func parseFile(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			cp := s
			out[name] = &cp
			continue
		}
		// Reduce repeated samples: min time, max allocations.
		if s.haveNs && (!prev.haveNs || s.NsOp < prev.NsOp) {
			prev.NsOp, prev.haveNs = s.NsOp, true
		}
		if s.haveAl && (!prev.haveAl || s.AllocsOp > prev.AllocsOp) {
			prev.AllocsOp, prev.haveAl = s.AllocsOp, true
			prev.BytesOp = s.BytesOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines in %s", path)
	}
	return out, nil
}

// parseLine extracts one testing.B output line:
//
//	BenchmarkName-8   12  12345 ns/op  17 extra-metric  64 B/op  3 allocs/op
//
// Value/unit pairs follow the iteration count; unknown units are ignored.
// The -N GOMAXPROCS suffix is stripped so runs from different hosts compare.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsOp, s.haveNs = v, true
		case "allocs/op":
			s.AllocsOp, s.haveAl = v, true
		case "B/op":
			s.BytesOp = v
		}
	}
	return name, s, s.haveNs || s.haveAl
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
