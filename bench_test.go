// Benchmarks regenerating every figure of the paper's evaluation (Figs.
// 2–10), the ablations of DESIGN.md §6, and the substrate layers. Figure
// benchmarks report the paper's key metric for that figure via
// b.ReportMetric, so `go test -bench Fig` doubles as a compact results table:
//
//	go test -bench=Fig -benchmem            # all figures, small preset
//	go test -bench=BenchmarkFig9            # just the memory-latency figure
package dssmem_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"dssmem/internal/cache"
	"dssmem/internal/db/btree"
	"dssmem/internal/db/engine"
	"dssmem/internal/db/storage"
	"dssmem/internal/experiments"
	"dssmem/internal/fleet"
	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/oltp"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
	"dssmem/internal/sim"
	"dssmem/internal/tpch"
	"dssmem/internal/trace"
	"dssmem/internal/workload"
)

var (
	benchDataOnce sync.Once
	benchData     *tpch.Data
)

func smallData() *tpch.Data {
	benchDataOnce.Do(func() {
		benchData = tpch.Generate(experiments.Small.SF, experiments.Small.Seed)
	})
	return benchData
}

// benchFigure regenerates one figure per iteration (fresh run cache, shared
// data) and reports the chosen headline metric from the last run.
func benchFigure(b *testing.B, id int, metric func(*experiments.Result) (string, float64)) {
	b.Helper()
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnvWith(experiments.Small, smallData())
		r, err := experiments.RunFigure(env, id, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

func point(r *experiments.Result, query string, procs int) *workloadPoint {
	for _, s := range r.Series {
		if s.Query == query {
			if m := s.At(procs); m != nil {
				return &workloadPoint{m.CyclesPerMInstr, m.L1MissesPerM, m.L2MissesPerM, m.MemLatencyCycles, m.VolPerM}
			}
		}
	}
	return nil
}

type workloadPoint struct {
	cyclesPerM, l1PerM, l2PerM, memLat, volPerM float64
}

// BenchmarkFig2 regenerates Figure 2 (thread time in cycles, 1 vs 8 procs).
func BenchmarkFig2(b *testing.B) { benchFigure(b, 2, nil) }

// BenchmarkFig3 regenerates Figure 3 (CPI).
func BenchmarkFig3(b *testing.B) { benchFigure(b, 3, nil) }

// BenchmarkFig4 regenerates Figure 4 (data-cache misses and rates).
func BenchmarkFig4(b *testing.B) { benchFigure(b, 4, nil) }

// BenchmarkFig5 regenerates Figure 5 (Origin cycles/1M instr sweep).
func BenchmarkFig5(b *testing.B) {
	benchFigure(b, 5, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 8); p != nil {
			return "sgi-cyc/Minstr@8p", p.cyclesPerM
		}
		return "none", 0
	})
}

// BenchmarkFig6 regenerates Figure 6 (Origin L2 misses/1M instr sweep).
func BenchmarkFig6(b *testing.B) {
	benchFigure(b, 6, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q21", 8); p != nil {
			return "sgi-L2/Minstr@8p", p.l2PerM
		}
		return "none", 0
	})
}

// BenchmarkFig7 regenerates Figure 7 (V-Class cycles/1M instr sweep).
func BenchmarkFig7(b *testing.B) {
	benchFigure(b, 7, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 8); p != nil {
			return "hpv-cyc/Minstr@8p", p.cyclesPerM
		}
		return "none", 0
	})
}

// BenchmarkFig8 regenerates Figure 8 (V-Class Dcache misses/1M instr).
func BenchmarkFig8(b *testing.B) {
	benchFigure(b, 8, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 8); p != nil {
			return "hpv-L1/Minstr@8p", p.l1PerM
		}
		return "none", 0
	})
}

// BenchmarkFig9 regenerates Figure 9 (V-Class memory latency sweep).
func BenchmarkFig9(b *testing.B) {
	benchFigure(b, 9, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 2); p != nil {
			return "hpv-memlat-cyc@2p", p.memLat
		}
		return "none", 0
	})
}

// BenchmarkFig10 regenerates Figure 10 (context switches/1M instr).
func BenchmarkFig10(b *testing.B) {
	benchFigure(b, 10, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q21", 8); p != nil {
			return "hpv-vol/Minstr@8p", p.volPerM
		}
		return "none", 0
	})
}

// benchAblation runs one named ablation per iteration.
func benchAblation(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnvWith(experiments.Small, smallData())
		if _, err := experiments.RunAblation(env, name, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md §6 calls out.
func BenchmarkAblationMigratory(b *testing.B)   { benchAblation(b, "migratory") }
func BenchmarkAblationSpeculation(b *testing.B) { benchAblation(b, "speculation") }
func BenchmarkAblationL2Line(b *testing.B)      { benchAblation(b, "l2line") }
func BenchmarkAblationBackoff(b *testing.B)     { benchAblation(b, "backoff") }
func BenchmarkAblationHeaders(b *testing.B)     { benchAblation(b, "headers") }
func BenchmarkAblationHints(b *testing.B)       { benchAblation(b, "hints") }
func BenchmarkAblationPlacement(b *testing.B)   { benchAblation(b, "placement") }

// BenchmarkSingleRun measures one end-to-end workload run (Q12, 4 processes,
// Origin) — the unit of work every figure is composed of.
func BenchmarkSingleRun(b *testing.B) {
	data := smallData()
	for i := 0; i < b.N; i++ {
		_, err := workload.RunUnchecked(workload.Options{
			Spec:        machine.OriginSpec(32, 64),
			Data:        data,
			Query:       tpch.Q12,
			Processes:   4,
			OSTimeScale: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate benchmarks: the simulator's own performance ---

// BenchmarkCacheLookup measures the tag-array hot path.
func BenchmarkCacheLookup(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", Size: 64 << 10, LineSize: 32, Assoc: 2})
	for i := uint64(0); i < 2048; i++ {
		c.Insert(i, cache.Exclusive)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i) & 2047
		if _, hit := c.Lookup(line, false); !hit {
			c.Insert(line, cache.Exclusive)
		}
	}
}

// BenchmarkMachineAccess measures one simulated memory instruction through
// the full hierarchy+directory path (mostly hits).
func BenchmarkMachineAccess(b *testing.B) {
	m := machine.New(machine.OriginSpec(4, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := memsys.Addr((i & 0xffff) * 8)
		m.Access(i&3, addr, 8, i&15 == 0, uint64(i))
	}
}

// BenchmarkBTreeLookup measures a charged index descent.
func BenchmarkBTreeLookup(b *testing.B) {
	pool := storage.NewPool(0, 512)
	t := btree.New(pool)
	for i := 0; i < 100_000; i++ {
		t.Insert(int64(i), storage.TID{Page: uint32(i >> 8), Slot: uint16(i & 0xff)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(storage.NullMem{}, int64(i%100_000), nil)
	}
}

// BenchmarkSimKernelHandoff measures the scheduler's context-switch cost.
func BenchmarkSimKernelHandoff(b *testing.B) {
	k := sim.NewKernel(1)
	n := b.N
	for p := 0; p < 2; p++ {
		k.Spawn(func(pr *sim.Proc) {
			for i := 0; i < n/2+1; i++ {
				pr.Advance(1) // one handoff per advance at quantum 1
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimKernelHandoff8 is the 8-process variant: the scheduler pick is
// a linear (clock, ID) min-scan over the runnable set, so the per-handoff
// cost must stay flat in the process count (the previous implementation
// re-sorted the whole set on every handoff).
func BenchmarkSimKernelHandoff8(b *testing.B) {
	k := sim.NewKernel(1)
	n := b.N
	for p := 0; p < 8; p++ {
		k.Spawn(func(pr *sim.Proc) {
			for i := 0; i < n/8+1; i++ {
				pr.Advance(1)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSingleRun8 measures the 8-process configuration (the paper's most
// contended point) under the serial scheduler; BenchmarkSingleRun8Parallel is
// the same work under bound–weave. Their ratio is the in-simulation parallel
// speedup at the host's GOMAXPROCS — compare with GOMAXPROCS=1 to isolate
// the mode's coordination overhead from real parallelism.
func BenchmarkSingleRun8(b *testing.B)         { benchSingleRun8(b, false) }
func BenchmarkSingleRun8Parallel(b *testing.B) { benchSingleRun8(b, true) }

func benchSingleRun8(b *testing.B, parallel bool) {
	data := smallData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := workload.RunUnchecked(workload.Options{
			Spec:        machine.OriginSpec(32, 64),
			Data:        data,
			Query:       tpch.Q6,
			Processes:   8,
			OSTimeScale: 64,
			Parallel:    parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- warm-state checkpoints and interval sampling (DESIGN.md §15) ---

// BenchmarkColdPrelude measures the warmup prelude every cold run pays before
// its measured region: engine open plus the TPC-H bulk load, at the small
// preset. BenchmarkWarmRestore is the same state reached via a checkpoint.
func BenchmarkColdPrelude(b *testing.B) {
	data := smallData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.CaptureWarm(workload.Options{Data: data}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmRestore measures rebuilding the warm state from a captured
// image (engine.FromImage) instead of re-running the prelude. The checkpoint
// acceptance bar is this beating BenchmarkColdPrelude by at least 3x.
func BenchmarkWarmRestore(b *testing.B) {
	data := smallData()
	img, err := workload.CaptureWarm(workload.Options{Data: data})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Config{PoolPages: tpch.PoolPagesFor(data)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.FromImage(img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSampledFigure regenerates one figure per iteration on the fast path
// dssbench -ckpt -sample-quanta takes: warm-state checkpoints on (one capture,
// fourteen restores per figure) and SMARTS interval sampling at the gate's
// default period. The reported metric is the sampled estimate of the same
// headline number the exact benchmark reports, so the exact-vs-sampled pair
// shows both the speedup and the estimation error side by side.
func benchSampledFigure(b *testing.B, id int, metric func(*experiments.Result) (string, float64)) {
	b.Helper()
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnvWith(experiments.Small, smallData())
		env.Checkpoints = true
		env.SampleQuanta = experiments.DefaultSamplingQuanta
		r, err := experiments.RunFigure(env, id, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// BenchmarkSampledFig5 is BenchmarkFig5 under checkpoints + sampling.
func BenchmarkSampledFig5(b *testing.B) {
	benchSampledFigure(b, 5, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 8); p != nil {
			return "sgi-cyc/Minstr@8p", p.cyclesPerM
		}
		return "none", 0
	})
}

// BenchmarkSampledFig9 is BenchmarkFig9 under checkpoints + sampling.
func BenchmarkSampledFig9(b *testing.B) {
	benchSampledFigure(b, 9, func(r *experiments.Result) (string, float64) {
		if p := point(r, "Q6", 2); p != nil {
			return "hpv-memlat-cyc@2p", p.memLat
		}
		return "none", 0
	})
}

// BenchmarkTPCHGenerate measures data generation.
func BenchmarkTPCHGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tpch.Generate(0.002, uint64(i))
	}
}

// BenchmarkQ6Reference measures the plain-Go reference query (upper bound on
// achievable scan speed, for contrast with the simulated run).
func BenchmarkQ6Reference(b *testing.B) {
	data := smallData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpch.RefQ6(data)
	}
}

// Extension-experiment benchmarks.
func BenchmarkAblationTaxonomy(b *testing.B) { benchAblation(b, "taxonomy") }
func BenchmarkAblationMix(b *testing.B)      { benchAblation(b, "mix") }
func BenchmarkAblationOLTP(b *testing.B)     { benchAblation(b, "oltp") }

// BenchmarkOLTPRun measures one transactional run (relation locks, 4 procs).
func BenchmarkOLTPRun(b *testing.B) {
	cfg := oltp.DefaultConfig()
	cfg.Transactions = 50
	for i := 0; i < b.N; i++ {
		st, err := oltp.Run(machine.VClassSpec(16, 64), cfg, 4, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(st.TxPerMCycle(), "tx/Mcycle")
		}
	}
}

// BenchmarkTraceCaptureReplay measures the trace-driven path end to end.
func BenchmarkTraceCaptureReplay(b *testing.B) {
	data := tpch.Generate(0.001, 7)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := trace.CaptureQuery(&buf, data, tpch.Q6); err != nil {
			b.Fatal(err)
		}
		m := machine.New(machine.VClassSpec(2, 256))
		mem := &trace.MachineMem{M: m, CPU: 0}
		if _, err := trace.Replay(bytes.NewReader(buf.Bytes()), mem); err != nil {
			b.Fatal(err)
		}
	}
}

// cannedTransport plays a fleet of in-process fake workers: every
// /v1/measure call is answered from canned bytes keyed by the procs
// parameter, with the X-Digest the coordinator will verify. No sockets, no
// simulation — the benchmark isolates the coordinator itself.
type cannedTransport struct {
	resp map[string]cannedResp
}

type cannedResp struct {
	digest string
	body   []byte
}

func (t cannedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	cr, ok := t.resp[req.URL.Query().Get("procs")]
	if !ok {
		return nil, fmt.Errorf("canned worker: unexpected call %s", req.URL)
	}
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	h.Set("X-Digest", cr.digest)
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader(cr.body)),
		Request:    req,
	}, nil
}

// BenchmarkFleetFanout measures the coordinator's orchestration cost in
// isolation: one /v1/sweep served over four fake workers answering from
// canned bytes. DisableCache makes every iteration pay the full fan-out
// path — parse, per-point digests, ring lookups, raced worker calls,
// X-Digest verification, splice, encode — which is the fleet's own overhead
// on top of whatever the workers do.
func BenchmarkFleetFanout(b *testing.B) {
	preset := experiments.Tiny
	spec, err := service.ParseMachine("vclass", "", preset.MemScale)
	if err != nil {
		b.Fatal(err)
	}
	canned := make(map[string]cannedResp, len(experiments.ProcCounts))
	for _, n := range experiments.ProcCounts {
		dig := service.MeasureDigest(preset, tpch.Q6, n, workload.Options{Spec: spec})
		meas := fmt.Sprintf(
			`{"Procs":%d,"CyclesPerMInstr":%d.5,"L1MissesPerM":%d,"L2MissesPerM":%d,"MemLatencyCycles":%d}`,
			n, 1000+n, 40+n, 10+n, 90+n)
		canned[strconv.Itoa(n)] = cannedResp{
			digest: string(dig),
			body:   []byte(fmt.Sprintf(`{"digest":%q,"cache":"hit","measurement":%s}`, dig, meas)),
		}
	}
	workers := make([]fleet.Worker, 4)
	for i := range workers {
		workers[i] = fleet.Worker{Name: fmt.Sprintf("w%d", i), URL: fmt.Sprintf("http://fake-w%d", i)}
	}
	coord, err := fleet.New(fleet.Config{
		Preset:       preset,
		Workers:      workers,
		HTTP:         &http.Client{Transport: cannedTransport{canned}},
		StealAfter:   -1,
		DisableCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := coord.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/sweep?machine=vclass&query=Q6", nil))
		if rr.Code != http.StatusOK {
			b.Fatalf("sweep fan-out: %d %s", rr.Code, rr.Body)
		}
	}
}

// BenchmarkTelemetryDisabled measures the result-cache memory-hit path as
// the daemon serves it when no request is being tracked (a plain context):
// the phase hooks in rescache must degrade to one context lookup plus no-op
// closures, adding zero allocations (the single alloc here is the cache-key
// concat, which predates telemetry). This is the benchcmp-gated proof that
// request-scoped telemetry costs ~nothing when it is off.
func BenchmarkTelemetryDisabled(b *testing.B) {
	store := rescache.NewMemory()
	dig := rescache.Digest("bench-telemetry-disabled")
	if err := store.Put(rescache.NSMeasurement, dig, []byte(`{"ok":true}`)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := store.Do(ctx, rescache.NSMeasurement, dig, nil); !hit || err != nil {
			b.Fatalf("want mem hit, got hit=%v err=%v", hit, err)
		}
	}
}
